// Bit-exactness tests for the SIMD kernel layer (src/tensor/kernels.h).
//
// The kernel contract requires every compiled backend to agree with the
// scalar reference to 0 ULP for all primitives, for every length
// (aligned multiples of the vector width, unaligned starting pointers,
// and ragged tails), including special values (±0, denormals, huge
// magnitudes). These tests enumerate each available backend against the
// scalar table and compare results bitwise.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/kernels.h"

namespace pieck {
namespace {

std::uint64_t Bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

::testing::AssertionResult BitEqual(double a, double b) {
  if (Bits(a) == Bits(b)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " (0x" << std::hex << Bits(a) << ") != " << std::dec << b
         << " (0x" << std::hex << Bits(b) << ")";
}

::testing::AssertionResult BitEqualVec(const std::vector<double>& a,
                                       const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (Bits(a[i]) != Bits(b[i])) {
      return ::testing::AssertionFailure()
             << "index " << i << ": " << a[i] << " != " << b[i] << " (0x"
             << std::hex << Bits(a[i]) << " vs 0x" << Bits(b[i]) << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

// Lengths covering empty input, sub-vector-width, exact multiples of
// the 4-lane block, and ragged tails of every residue.
const size_t kLengths[] = {0,  1,  2,  3,  4,  5,   6,   7,   8,  9,
                           15, 16, 17, 31, 32, 33,  63,  64,  65, 100,
                           127, 128, 129, 255, 256, 257};

// Offsets into an oversized buffer: 0 keeps malloc's 16-byte alignment,
// 1 guarantees a start that is NOT 32-byte (AVX2) or 16-byte (NEON)
// aligned, exercising the unaligned-load path.
const size_t kOffsets[] = {0, 1};

/// Fills `v` with a deterministic mix of ordinary values and edge
/// cases: ±0.0, denormals, values spanning ~600 orders of magnitude
/// (so reduction order matters and any reassociation shows up).
void FillTestData(Rng& rng, std::vector<double>& v) {
  for (size_t i = 0; i < v.size(); ++i) {
    switch (i % 7) {
      case 0:
        v[i] = rng.Normal(0.0, 1.0);
        break;
      case 1:
        v[i] = rng.Normal(0.0, 1e150);
        break;
      case 2:
        v[i] = rng.Normal(0.0, 1e-150);
        break;
      case 3:
        v[i] = 0.0;
        break;
      case 4:
        v[i] = -0.0;
        break;
      case 5:
        v[i] = 4.9406564584124654e-324 * (1.0 + static_cast<double>(i % 13));
        break;
      default:
        v[i] = -rng.Normal(0.0, 1.0);
        break;
    }
  }
}

// AvailableKernelTables() lists scalar first, so scalar-vs-scalar runs
// as a trivial but harmless baseline; it keeps the parameterized suite
// instantiated when the build has no SIMD backend
// (-DPIECK_ENABLE_SIMD=OFF) or the CPU lacks one.
std::vector<const KernelTable*> TablesUnderTest() {
  return AvailableKernelTables();
}

class KernelEquivalenceTest
    : public ::testing::TestWithParam<const KernelTable*> {
 protected:
  const KernelTable& simd() const { return *GetParam(); }
  const KernelTable& scalar() const { return ScalarKernels(); }
};

std::string TableName(
    const ::testing::TestParamInfo<const KernelTable*>& info) {
  return KernelBackendName(info.param->backend);
}

TEST_P(KernelEquivalenceTest, Reductions) {
  Rng rng(42);
  for (size_t n : kLengths) {
    for (size_t off : kOffsets) {
      std::vector<double> a(n + off + 8), b(n + off + 8);
      FillTestData(rng, a);
      FillTestData(rng, b);
      const double* pa = a.data() + off;
      const double* pb = b.data() + off;
      EXPECT_TRUE(BitEqual(scalar().dot(pa, pb, n), simd().dot(pa, pb, n)))
          << "dot n=" << n << " off=" << off;
      EXPECT_TRUE(BitEqual(scalar().squared_norm(pa, n),
                           simd().squared_norm(pa, n)))
          << "squared_norm n=" << n << " off=" << off;
      EXPECT_TRUE(BitEqual(scalar().squared_distance(pa, pb, n),
                           simd().squared_distance(pa, pb, n)))
          << "squared_distance n=" << n << " off=" << off;
    }
  }
}

// The batched GEMV must produce, for every row, bitwise the result of a
// scalar-reference dot on that row — including the row counts around the
// SIMD row-blocking factors (4 rows on AVX2, 2 on NEON) and ragged
// column tails.
TEST_P(KernelEquivalenceTest, GemvMatchesPerRowDot) {
  Rng rng(47);
  const size_t kRowCounts[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 33};
  const size_t kColCounts[] = {0, 1, 3, 7, 8, 9, 16, 31, 64, 65};
  for (size_t rows : kRowCounts) {
    for (size_t cols : kColCounts) {
      for (size_t off : kOffsets) {
        std::vector<double> m(rows * cols + off), x(cols + off);
        FillTestData(rng, m);
        FillTestData(rng, x);
        const double* pm = m.data() + off;
        const double* px = x.data() + off;
        std::vector<double> out_gemv(rows, 7.0), out_dot(rows, 7.0);
        simd().gemv(pm, rows, cols, px, out_gemv.data());
        for (size_t r = 0; r < rows; ++r) {
          out_dot[r] = scalar().dot(pm + r * cols, px, cols);
        }
        EXPECT_TRUE(BitEqualVec(out_gemv, out_dot))
            << "gemv rows=" << rows << " cols=" << cols << " off=" << off;
      }
    }
  }
}

TEST_P(KernelEquivalenceTest, Elementwise) {
  Rng rng(43);
  const double alphas[] = {0.0, -0.0, 1.0, -1.0, 0.3, -7.5e100, 2.5e-200};
  for (size_t n : kLengths) {
    for (size_t off : kOffsets) {
      std::vector<double> x(n + off + 8);
      FillTestData(rng, x);
      for (double alpha : alphas) {
        std::vector<double> ys(n + off + 8), yv(ys);
        FillTestData(rng, ys);
        yv = ys;
        scalar().axpy(alpha, x.data() + off, ys.data() + off, n);
        simd().axpy(alpha, x.data() + off, yv.data() + off, n);
        EXPECT_TRUE(BitEqualVec(ys, yv)) << "axpy n=" << n << " off=" << off
                                         << " alpha=" << alpha;

        std::vector<double> xs(x), xv(x);
        scalar().scale(alpha, xs.data() + off, n);
        simd().scale(alpha, xv.data() + off, n);
        EXPECT_TRUE(BitEqualVec(xs, xv)) << "scale n=" << n << " off=" << off
                                         << " alpha=" << alpha;
      }
    }
  }
}

TEST_P(KernelEquivalenceTest, Relu) {
  Rng rng(44);
  for (size_t n : kLengths) {
    for (size_t off : kOffsets) {
      std::vector<double> pre(n + off + 8), delta(n + off + 8);
      FillTestData(rng, pre);
      FillTestData(rng, delta);

      std::vector<double> outs(pre.size(), 7.0), outv(pre.size(), 7.0);
      scalar().relu(pre.data() + off, outs.data() + off, n);
      simd().relu(pre.data() + off, outv.data() + off, n);
      EXPECT_TRUE(BitEqualVec(outs, outv)) << "relu n=" << n << " off=" << off;

      std::vector<double> ds(delta), dv(delta);
      scalar().relu_backward(pre.data() + off, ds.data() + off, n);
      simd().relu_backward(pre.data() + off, dv.data() + off, n);
      EXPECT_TRUE(BitEqualVec(ds, dv))
          << "relu_backward n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelEquivalenceTest, ComposedHelpers) {
  Rng rng(45);
  for (size_t n : kLengths) {
    std::vector<double> u(n), v(n);
    FillTestData(rng, u);
    FillTestData(rng, v);
    for (double label : {0.0, 1.0}) {
      std::vector<double> gus(n, 0.25), guv(n, 0.25), gvs(n, -0.5),
          gvv(n, -0.5);
      const double ls = scalar().BceStep(label, 0.125, u.data(), v.data(),
                                         n > 0 ? gus.data() : nullptr,
                                         n > 0 ? gvs.data() : nullptr, n);
      const double lv = simd().BceStep(label, 0.125, u.data(), v.data(),
                                       n > 0 ? guv.data() : nullptr,
                                       n > 0 ? gvv.data() : nullptr, n);
      EXPECT_TRUE(BitEqual(ls, lv)) << "BceStep loss n=" << n;
      EXPECT_TRUE(BitEqualVec(gus, guv)) << "BceStep grad_u n=" << n;
      EXPECT_TRUE(BitEqualVec(gvs, gvv)) << "BceStep grad_v n=" << n;
    }

    for (double max_norm : {0.0, 0.5, 1e3}) {
      std::vector<double> xs(u), xv(u);
      scalar().ProjectL2Ball(xs.data(), n, max_norm);
      simd().ProjectL2Ball(xv.data(), n, max_norm);
      EXPECT_TRUE(BitEqualVec(xs, xv))
          << "ProjectL2Ball n=" << n << " max_norm=" << max_norm;
    }
  }
}

// axpy documents that x == y (exact overlap) is allowed.
TEST_P(KernelEquivalenceTest, AxpyAllowsExactAliasing) {
  Rng rng(46);
  for (size_t n : kLengths) {
    std::vector<double> xs(n), xv;
    FillTestData(rng, xs);
    xv = xs;
    scalar().axpy(0.75, xs.data(), xs.data(), n);
    simd().axpy(0.75, xv.data(), xv.data(), n);
    EXPECT_TRUE(BitEqualVec(xs, xv)) << "aliased axpy n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, KernelEquivalenceTest,
                         ::testing::ValuesIn(TablesUnderTest()), TableName);

TEST(KernelDispatchTest, ScalarAlwaysAvailable) {
  EXPECT_EQ(ScalarKernels().backend, KernelBackend::kScalar);
  EXPECT_TRUE(SetActiveKernelBackend(KernelBackend::kScalar));
  EXPECT_EQ(ActiveKernels().backend, KernelBackend::kScalar);
}

TEST(KernelDispatchTest, SetActiveRoundTrips) {
  const KernelBackend original = ActiveKernels().backend;
  for (const KernelTable* table : TablesUnderTest()) {
    ASSERT_TRUE(SetActiveKernelBackend(table->backend));
    EXPECT_EQ(ActiveKernels().backend, table->backend);
  }
  ASSERT_TRUE(SetActiveKernelBackend(original));
}

TEST(KernelDispatchTest, UnavailableBackendRejected) {
  const KernelBackend original = ActiveKernels().backend;
  if (Avx2Kernels() == nullptr) {
    EXPECT_FALSE(SetActiveKernelBackend(KernelBackend::kAvx2));
  }
  if (NeonKernels() == nullptr) {
    EXPECT_FALSE(SetActiveKernelBackend(KernelBackend::kNeon));
  }
  EXPECT_EQ(ActiveKernels().backend, original);
}

}  // namespace
}  // namespace pieck
