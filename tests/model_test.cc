#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "model/losses.h"
#include "model/mf_model.h"
#include "model/ncf_model.h"
#include "model/rec_model.h"
#include "tensor/grad_check.h"
#include "tensor/math.h"

namespace pieck {
namespace {

constexpr int kDim = 6;

struct ModelCase {
  ModelKind kind;
  const char* name;
};

class RecModelSuite : public ::testing::TestWithParam<ModelCase> {
 protected:
  void SetUp() override {
    model_ = MakeModel(GetParam().kind, kDim);
    Rng rng(17);
    global_ = model_->InitGlobalModel(/*num_items=*/8, rng);
    user_ = model_->InitUserEmbedding(rng);
  }

  std::unique_ptr<RecModel> model_;
  GlobalModel global_;
  Vec user_;
};

TEST_P(RecModelSuite, InitShapes) {
  EXPECT_EQ(global_.num_items(), 8);
  EXPECT_EQ(global_.dim(), kDim);
  EXPECT_EQ(static_cast<int>(user_.size()), kDim);
  EXPECT_EQ(model_->has_learnable_interaction(),
            GetParam().kind == ModelKind::kNeuralCf);
  EXPECT_EQ(global_.has_interaction_params(),
            model_->has_learnable_interaction());
}

TEST_P(RecModelSuite, ScoreProbInUnitInterval) {
  for (int j = 0; j < global_.num_items(); ++j) {
    Vec v = global_.item_embeddings.Row(static_cast<size_t>(j));
    double p = model_->ScoreProb(global_, user_, v);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST_P(RecModelSuite, ForwardDeterministic) {
  Vec v = global_.item_embeddings.Row(0);
  EXPECT_DOUBLE_EQ(model_->Forward(global_, user_, v, nullptr),
                   model_->Forward(global_, user_, v, nullptr));
}

TEST_P(RecModelSuite, GradientWrtItemMatchesNumeric) {
  Rng rng(23);
  Vec v = global_.item_embeddings.Row(1);
  ForwardCache cache;
  for (double label : {0.0, 1.0}) {
    double logit = model_->Forward(global_, user_, v, &cache);
    double dlogit = BceGradFromLogit(label, logit);
    Vec grad_v = Zeros(v.size());
    model_->Backward(global_, user_, v, cache, dlogit, nullptr, &grad_v,
                     nullptr);
    double err = MaxRelativeGradError(
        [&](const Vec& x) {
          return BceLossFromLogit(label,
                                  model_->Forward(global_, user_, x, nullptr));
        },
        v, grad_v, 1e-6);
    EXPECT_LT(err, 1e-4) << "label " << label;
  }
}

TEST_P(RecModelSuite, GradientWrtUserMatchesNumeric) {
  Vec v = global_.item_embeddings.Row(2);
  ForwardCache cache;
  double logit = model_->Forward(global_, user_, v, &cache);
  double dlogit = BceGradFromLogit(1.0, logit);
  Vec grad_u = Zeros(user_.size());
  model_->Backward(global_, user_, v, cache, dlogit, &grad_u, nullptr,
                   nullptr);
  double err = MaxRelativeGradError(
      [&](const Vec& x) {
        return BceLossFromLogit(1.0, model_->Forward(global_, x, v, nullptr));
      },
      user_, grad_u, 1e-6);
  EXPECT_LT(err, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Models, RecModelSuite,
    ::testing::Values(ModelCase{ModelKind::kMatrixFactorization, "mf"},
                      ModelCase{ModelKind::kNeuralCf, "ncf"}),
    [](const ::testing::TestParamInfo<ModelCase>& info) {
      return info.param.name;
    });

TEST(MfModelTest, LogitIsDotProduct) {
  MfModel model(3);
  GlobalModel g;
  Vec u = {1, 2, 3};
  Vec v = {4, 5, 6};
  EXPECT_DOUBLE_EQ(model.Forward(g, u, v, nullptr), 32.0);
}

TEST(NcfModelTest, InteractionGradientsMatchNumeric) {
  NcfModel model(4, {4, 2});
  Rng rng(31);
  GlobalModel g = model.InitGlobalModel(3, rng);
  Vec u = model.InitUserEmbedding(rng);
  Vec v = g.item_embeddings.Row(0);

  ForwardCache cache;
  double logit = model.Forward(g, u, v, &cache);
  double dlogit = BceGradFromLogit(1.0, logit);
  InteractionGrads igrads = InteractionGrads::ZerosLike(g);
  model.Backward(g, u, v, cache, dlogit, nullptr, nullptr, &igrads);

  // Check the projection-vector gradient numerically.
  Vec analytic_h = igrads.projection;
  GlobalModel probe = g;
  double err = MaxRelativeGradError(
      [&](const Vec& h) {
        probe.projection = h;
        return BceLossFromLogit(1.0, model.Forward(probe, u, v, nullptr));
      },
      g.projection, analytic_h, 1e-6);
  EXPECT_LT(err, 1e-4);

  // Check the first-layer bias gradient numerically.
  Vec analytic_b0 = igrads.biases[0];
  probe = g;
  err = MaxRelativeGradError(
      [&](const Vec& b0) {
        probe.mlp_biases[0] = b0;
        return BceLossFromLogit(1.0, model.Forward(probe, u, v, nullptr));
      },
      g.mlp_biases[0], analytic_b0, 1e-6);
  EXPECT_LT(err, 1e-4);

  // Spot-check a first-layer weight row via flattening.
  Vec w0_row0 = igrads.weights[0].Row(0);
  probe = g;
  Vec w_orig = g.mlp_weights[0].Row(0);
  err = MaxRelativeGradError(
      [&](const Vec& row) {
        probe.mlp_weights[0].SetRow(0, row);
        return BceLossFromLogit(1.0, model.Forward(probe, u, v, nullptr));
      },
      w_orig, w0_row0, 1e-6);
  EXPECT_LT(err, 1e-4);
}

TEST(NcfModelTest, DefaultTowerWhenHiddenEmpty) {
  NcfModel model(8, {});
  ASSERT_EQ(model.hidden_dims().size(), 2u);
  EXPECT_EQ(model.hidden_dims()[0], 8);
  EXPECT_EQ(model.hidden_dims()[1], 4);
}

TEST(InteractionGradsTest, FlattenUnflattenRoundTrip) {
  NcfModel model(4, {3, 2});
  Rng rng(41);
  GlobalModel g = model.InitGlobalModel(2, rng);
  InteractionGrads grads = InteractionGrads::ZerosLike(g);
  // Fill with recognizable values.
  double c = 0.5;
  for (auto& w : grads.weights) {
    for (auto& v : w.data()) v = c += 1.0;
  }
  for (auto& b : grads.biases) {
    for (auto& v : b) v = c += 1.0;
  }
  for (auto& v : grads.projection) v = c += 1.0;

  Vec flat = grads.Flatten();
  InteractionGrads copy = InteractionGrads::ZerosLike(g);
  copy.Unflatten(flat);
  EXPECT_EQ(copy.Flatten(), flat);
  EXPECT_DOUBLE_EQ(copy.SquaredNorm(), grads.SquaredNorm());
}

TEST(InteractionGradsTest, InactiveForMf) {
  MfModel model(4);
  Rng rng(43);
  GlobalModel g = model.InitGlobalModel(2, rng);
  InteractionGrads grads = InteractionGrads::ZerosLike(g);
  EXPECT_FALSE(grads.active);
}

TEST(ClientUpdateTest, AccumulateAndFind) {
  ClientUpdate upd;
  upd.AccumulateItemGrad(5, {1, 1});
  upd.AccumulateItemGrad(2, {2, 2});
  upd.AccumulateItemGrad(5, {3, 3});
  ASSERT_EQ(upd.item_grads.size(), 2u);
  EXPECT_EQ(upd.item_grads[0].first, 2);  // sorted by item
  const Vec* g5 = upd.FindItemGrad(5);
  ASSERT_NE(g5, nullptr);
  EXPECT_DOUBLE_EQ((*g5)[0], 4.0);
  EXPECT_EQ(upd.FindItemGrad(99), nullptr);
}

TEST(LossTest, BceBatchLossDecreasesWithTraining) {
  MfModel model(kDim);
  Rng rng(51);
  GlobalModel g = model.InitGlobalModel(10, rng);
  Vec u = model.InitUserEmbedding(rng);
  std::vector<LabeledItem> batch = {{0, 1.0}, {1, 1.0}, {2, 0.0}, {3, 0.0}};

  double first_loss = 0.0;
  for (int step = 0; step < 50; ++step) {
    Vec grad_u = Zeros(u.size());
    ClientUpdate upd;
    double loss =
        BceBatchForwardBackward(model, g, u, batch, &grad_u, &upd, nullptr);
    if (step == 0) first_loss = loss;
    Axpy(-0.5, grad_u, u);
    for (const auto& [item, grad] : upd.item_grads) {
      g.item_embeddings.AxpyRow(static_cast<size_t>(item), -0.5, grad);
    }
  }
  Vec grad_u = Zeros(u.size());
  double final_loss =
      BceBatchForwardBackward(model, g, u, batch, &grad_u, nullptr, nullptr);
  EXPECT_LT(final_loss, first_loss * 0.5);
}

TEST(LossTest, BceGradientsMatchNumericOverBatch) {
  MfModel model(kDim);
  Rng rng(53);
  GlobalModel g = model.InitGlobalModel(6, rng);
  Vec u = model.InitUserEmbedding(rng);
  std::vector<LabeledItem> batch = {{0, 1.0}, {1, 0.0}, {2, 0.0}};

  Vec grad_u = Zeros(u.size());
  BceBatchForwardBackward(model, g, u, batch, &grad_u, nullptr, nullptr);
  double err = MaxRelativeGradError(
      [&](const Vec& x) {
        return BceBatchForwardBackward(model, g, x, batch, nullptr, nullptr,
                                       nullptr);
      },
      u, grad_u, 1e-6);
  EXPECT_LT(err, 1e-4);
}

TEST(LossTest, BprPushesPositiveAboveNegative) {
  MfModel model(kDim);
  Rng rng(57);
  GlobalModel g = model.InitGlobalModel(4, rng);
  Vec u = model.InitUserEmbedding(rng);
  std::vector<LabeledItem> batch = {{0, 1.0}, {1, 0.0}};

  for (int step = 0; step < 100; ++step) {
    Vec grad_u = Zeros(u.size());
    ClientUpdate upd;
    BprBatchForwardBackward(model, g, u, batch, &grad_u, &upd, nullptr);
    Axpy(-0.3, grad_u, u);
    for (const auto& [item, grad] : upd.item_grads) {
      g.item_embeddings.AxpyRow(static_cast<size_t>(item), -0.3, grad);
    }
  }
  double pos = model.Forward(g, u, g.item_embeddings.Row(0), nullptr);
  double neg = model.Forward(g, u, g.item_embeddings.Row(1), nullptr);
  EXPECT_GT(pos, neg + 1.0);
}

TEST(LossTest, BprEmptySidesReturnZero) {
  MfModel model(kDim);
  Rng rng(59);
  GlobalModel g = model.InitGlobalModel(4, rng);
  Vec u = model.InitUserEmbedding(rng);
  std::vector<LabeledItem> only_pos = {{0, 1.0}};
  EXPECT_DOUBLE_EQ(
      BprBatchForwardBackward(model, g, u, only_pos, nullptr, nullptr,
                              nullptr),
      0.0);
  std::vector<LabeledItem> only_neg = {{0, 0.0}};
  EXPECT_DOUBLE_EQ(
      BprBatchForwardBackward(model, g, u, only_neg, nullptr, nullptr,
                              nullptr),
      0.0);
}

TEST(LossTest, EmptyBatchIsZeroLoss) {
  MfModel model(kDim);
  Rng rng(61);
  GlobalModel g = model.InitGlobalModel(4, rng);
  Vec u = model.InitUserEmbedding(rng);
  EXPECT_DOUBLE_EQ(
      BceBatchForwardBackward(model, g, u, {}, nullptr, nullptr, nullptr),
      0.0);
}

TEST(ModelFactoryTest, KindNames) {
  EXPECT_STREQ(ModelKindToString(ModelKind::kMatrixFactorization), "MF-FRS");
  EXPECT_STREQ(ModelKindToString(ModelKind::kNeuralCf), "DL-FRS");
}

}  // namespace
}  // namespace pieck
