// The sharded update router: proves the router-based Route → Apply
// pipeline is bit-identical to the retired std::map grouping path for
// every model kind, aggregation rule, filter setting, thread count, and
// shard count; that steady-state routing allocates nothing; and that
// degenerate rounds (no uploads, no survivors, one item) route cleanly.
//
// The map path is reproduced here verbatim as `MapReferenceApply` — the
// exact FederatedServer::ApplyUpdates grouping this refactor removed —
// so the equivalence holds in every build type, not just against golden
// constants recorded on one machine.

#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/simulation.h"
#include "defense/robust_aggregators.h"
#include "fed/server.h"
#include "fed/update_router.h"
#include "model/mf_model.h"
#include "model/ncf_model.h"
#include "tensor/kernels.h"

namespace pieck {
namespace {

// ---------------------------------------------------------------------
// The pre-refactor map path, verbatim (fed/server.cc at commit 4b12f72),
// kept as the reference the router must match bit for bit.

GlobalModel MapReferenceApply(GlobalModel g,
                              const std::vector<ClientUpdate>& raw,
                              const Aggregator& aggregator,
                              const UpdateFilter* filter,
                              double learning_rate) {
  std::vector<int> surviving;
  if (filter != nullptr && !raw.empty()) {
    surviving = filter->Select(raw);
  } else {
    surviving.resize(raw.size());
    std::iota(surviving.begin(), surviving.end(), 0);
  }

  std::map<int, std::vector<const Vec*>> per_item;
  for (int idx : surviving) {
    for (const auto& [item, grad] : raw[static_cast<size_t>(idx)].item_grads) {
      per_item[item].push_back(&grad);
    }
  }
  const KernelTable& kernels = ActiveKernels();
  const size_t dim = g.item_embeddings.cols();
  for (const auto& [item, grads] : per_item) {
    double* row = g.item_embeddings.MutableRowPtr(static_cast<size_t>(item));
    if (std::optional<double> w = aggregator.LinearWeight(grads.size())) {
      const double step = -learning_rate * *w;
      for (const Vec* grad : grads) kernels.axpy(step, grad->data(), row, dim);
      continue;
    }
    Vec agg(dim);
    aggregator.Aggregate(grads, agg.data());
    kernels.axpy(-learning_rate, agg.data(), row, dim);
  }

  if (g.has_interaction_params()) {
    std::vector<Vec> flat_grads;
    for (int idx : surviving) {
      const ClientUpdate& upd = raw[static_cast<size_t>(idx)];
      if (upd.interaction_grads.active) {
        flat_grads.push_back(upd.interaction_grads.Flatten());
      }
    }
    if (!flat_grads.empty()) {
      Vec agg = aggregator.Aggregate(flat_grads);
      InteractionGrads step = InteractionGrads::ZerosLike(g);
      step.Unflatten(agg);
      for (size_t l = 0; l < g.mlp_weights.size(); ++l) {
        g.mlp_weights[l].Axpy(-learning_rate, step.weights[l]);
        Axpy(-learning_rate, step.biases[l], g.mlp_biases[l]);
      }
      Axpy(-learning_rate, step.projection, g.projection);
    }
  }
  return g;
}

void ExpectGlobalEq(const GlobalModel& a, const GlobalModel& b,
                    const std::string& label) {
  ASSERT_EQ(a.item_embeddings, b.item_embeddings) << label;
  ASSERT_EQ(a.mlp_weights.size(), b.mlp_weights.size()) << label;
  for (size_t l = 0; l < a.mlp_weights.size(); ++l) {
    EXPECT_EQ(a.mlp_weights[l], b.mlp_weights[l]) << label << " layer " << l;
    EXPECT_EQ(a.mlp_biases[l], b.mlp_biases[l]) << label << " layer " << l;
  }
  EXPECT_EQ(a.projection, b.projection) << label;
}

// ---------------------------------------------------------------------
// Synthetic upload construction.

/// `count` uploads, each carrying gradients for a handful of random
/// items (duplicates accumulate, matching real batch behavior) and, for
/// DL-FRS shapes, dense interaction gradients.
std::vector<ClientUpdate> MakeUploads(const GlobalModel& g, int count,
                                      int items_per_upload, Rng& rng) {
  std::vector<ClientUpdate> uploads(static_cast<size_t>(count));
  const int num_items = g.num_items();
  const size_t dim = static_cast<size_t>(g.dim());
  for (ClientUpdate& upd : uploads) {
    for (int e = 0; e < items_per_upload; ++e) {
      const int item = static_cast<int>(rng.UniformInt(0, num_items - 1));
      Vec grad(dim);
      for (double& v : grad) v = rng.Normal(0.0, 1.0);
      upd.AccumulateItemGrad(item, grad);
    }
    if (g.has_interaction_params()) {
      upd.interaction_grads = InteractionGrads::ZerosLike(g);
      for (Matrix& w : upd.interaction_grads.weights) {
        w.RandomNormal(rng, 0.0, 0.1);
      }
      for (Vec& b : upd.interaction_grads.biases) {
        for (double& v : b) v = rng.Normal(0.0, 0.1);
      }
      for (double& v : upd.interaction_grads.projection) {
        v = rng.Normal(0.0, 0.1);
      }
    }
  }
  return uploads;
}

struct AggregatorCase {
  const char* name;
  std::unique_ptr<Aggregator> (*make)();
};

const AggregatorCase kAggregators[] = {
    {"sum", [] { return std::unique_ptr<Aggregator>(new SumAggregator()); }},
    {"mean", [] { return std::unique_ptr<Aggregator>(new MeanAggregator()); }},
    {"median",
     [] { return std::unique_ptr<Aggregator>(new MedianAggregator()); }},
    {"trimmed_mean",
     [] {
       return std::unique_ptr<Aggregator>(new TrimmedMeanAggregator(0.2));
     }},
    {"norm_bound",
     [] { return std::unique_ptr<Aggregator>(new NormBoundAggregator(0.5)); }},
};

// ---------------------------------------------------------------------
// Bitwise map-vs-router equivalence over the full grid.

class RouterEquivalence : public ::testing::TestWithParam<ModelKind> {};

TEST_P(RouterEquivalence, BitIdenticalToMapPathForEveryConfiguration) {
  const ModelKind kind = GetParam();
  auto model = MakeModel(kind, 8);
  Rng rng(0x5eedULL);
  const GlobalModel initial = model->InitGlobalModel(41, rng);
  const std::vector<ClientUpdate> uploads = MakeUploads(initial, 12, 5, rng);
  const double lr = 0.1;

  for (const AggregatorCase& agg_case : kAggregators) {
    for (bool with_krum : {false, true}) {
      // Reference once per (rule, filter): it is thread/shard-free.
      const std::unique_ptr<Aggregator> ref_agg = agg_case.make();
      const KrumFilter ref_filter(0.2);
      const GlobalModel expected = MapReferenceApply(
          initial, uploads, *ref_agg, with_krum ? &ref_filter : nullptr, lr);

      for (int threads : {1, 0}) {
        for (int shards : {1, 3, 16}) {
          ServerConfig config;
          config.learning_rate = lr;
          config.num_threads = threads;
          config.router_shards = shards;
          FederatedServer server(
              *model, initial, config, agg_case.make(),
              with_krum ? std::make_unique<KrumFilter>(0.2) : nullptr);
          const int64_t copies_before = ClientUpdate::CopyCount();
          RoundStats stats;
          server.ApplyUpdates(uploads, &stats);
          EXPECT_EQ(ClientUpdate::CopyCount(), copies_before)
              << "routing deep-copied a ClientUpdate";
          EXPECT_EQ(stats.router_shards, shards);
          EXPECT_GT(stats.router_entries, 0);
          EXPECT_GT(stats.router_groups, 0);
          ExpectGlobalEq(server.global(), expected,
                         std::string(agg_case.name) +
                             (with_krum ? "+krum" : "") + " threads=" +
                             std::to_string(threads) + " shards=" +
                             std::to_string(shards));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Models, RouterEquivalence,
                         ::testing::Values(ModelKind::kMatrixFactorization,
                                           ModelKind::kNeuralCf),
                         [](const ::testing::TestParamInfo<ModelKind>& info) {
                           return info.param == ModelKind::kMatrixFactorization
                                      ? "mf"
                                      : "ncf";
                         });

// ---------------------------------------------------------------------
// Steady-state routing performs zero allocations: after the shapes
// stabilize, re-routing the same upload mix must not grow any router
// arena (mirrors the client-side capacity test in
// client_state_store_test / fed_test).

TEST(UpdateRouterTest, SteadyStateRoutingKeepsCapacity) {
  MfModel model(8);
  Rng rng(0xa110cULL);
  GlobalModel initial = model.InitGlobalModel(64, rng);
  std::vector<ClientUpdate> uploads = MakeUploads(initial, 16, 6, rng);

  for (const AggregatorCase& agg_case : {kAggregators[0], kAggregators[2]}) {
    ServerConfig config;
    config.num_threads = 2;
    config.router_shards = 3;
    FederatedServer server(model, initial, config, agg_case.make());
    server.ApplyUpdates(uploads);
    server.ApplyUpdates(uploads);
    const int64_t capacity_after_two = server.router().CapacityBytes();
    EXPECT_GT(capacity_after_two, 0);
    for (int round = 2; round < 6; ++round) {
      server.ApplyUpdates(uploads);
      EXPECT_EQ(server.router().CapacityBytes(), capacity_after_two)
          << agg_case.name << " round " << round;
    }
  }
}

// ---------------------------------------------------------------------
// Degenerate rounds.

TEST(UpdateRouterTest, EmptyUploadSetLeavesModelUntouched) {
  MfModel model(4);
  Rng rng(5);
  GlobalModel initial = model.InitGlobalModel(8, rng);
  ServerConfig config;
  config.num_threads = 2;
  config.router_shards = 4;
  FederatedServer server(model, initial, config,
                         std::make_unique<SumAggregator>());
  server.ApplyUpdates({});
  EXPECT_EQ(server.global().item_embeddings, initial.item_embeddings);
  EXPECT_EQ(server.router().total_entries(), 0);
  EXPECT_EQ(server.router().total_groups(), 0);
}

/// A filter that drops every upload: routing must cope with surviving
/// sets that are empty even though uploads exist.
class DropAllFilter : public UpdateFilter {
 public:
  std::string name() const override { return "DropAll"; }
  std::vector<int> Select(
      const std::vector<ClientUpdate>& /*updates*/) const override {
    return {};
  }
};

TEST(UpdateRouterTest, FilterDroppingEverySurvivorRoutesNothing) {
  MfModel model(4);
  Rng rng(7);
  GlobalModel initial = model.InitGlobalModel(8, rng);
  std::vector<ClientUpdate> uploads = MakeUploads(initial, 4, 3, rng);
  ServerConfig config;
  FederatedServer server(model, initial, config,
                         std::make_unique<SumAggregator>(),
                         std::make_unique<DropAllFilter>());
  server.ApplyUpdates(uploads);
  EXPECT_EQ(server.global().item_embeddings, initial.item_embeddings);
  EXPECT_EQ(server.router().total_entries(), 0);
}

TEST(UpdateRouterTest, SingleItemModelClampsShardCount) {
  // One item, sixteen requested shards: the router must clamp to one
  // shard and still produce the exact map-path result.
  MfModel model(4);
  Rng rng(11);
  GlobalModel initial = model.InitGlobalModel(1, rng);
  std::vector<ClientUpdate> uploads(3);
  for (size_t i = 0; i < uploads.size(); ++i) {
    uploads[i].AccumulateItemGrad(0, {1.0 + static_cast<double>(i), 0, 0, 0});
  }
  SumAggregator ref_agg;
  const GlobalModel expected =
      MapReferenceApply(initial, uploads, ref_agg, nullptr, 1.0);

  ServerConfig config;
  config.router_shards = 16;
  FederatedServer server(model, initial, config,
                         std::make_unique<SumAggregator>());
  RoundStats stats;
  server.ApplyUpdates(uploads, &stats);
  EXPECT_EQ(stats.router_shards, 1);
  EXPECT_EQ(stats.router_groups, 1);
  EXPECT_EQ(stats.router_entries, 3);
  ExpectGlobalEq(server.global(), expected, "single-item");
}

// ---------------------------------------------------------------------
// Shard-count derivation and config validation.

TEST(UpdateRouterTest, DefaultShardCountDerivesFromPool) {
  EXPECT_EQ(UpdateRouter::DefaultShardCount(1, 1000), 1);
  EXPECT_EQ(UpdateRouter::DefaultShardCount(4, 1000), 16);
  EXPECT_EQ(UpdateRouter::DefaultShardCount(8, 5), 5);  // clamped to items
  EXPECT_EQ(UpdateRouter::DefaultShardCount(2, 1), 1);
}

TEST(UpdateRouterTest, ValidateRejectsNegativeShardOverride) {
  ExperimentConfig config;
  config.router_shards = -1;
  EXPECT_FALSE(config.Validate().ok());
  config.router_shards = 0;
  EXPECT_TRUE(config.Validate().ok());
  config.router_shards = 7;
  EXPECT_TRUE(config.Validate().ok());
}

// A full simulation round reports stage timings and router telemetry.
TEST(UpdateRouterTest, RoundStatsReportStagesAndRouterTelemetry) {
  ExperimentConfig config;
  config.dataset = MovieLens100KConfig(0.05);
  config.embedding_dim = 8;
  config.rounds = 0;
  config.users_per_round = 16;
  config.num_threads = 2;
  config.router_shards = 5;
  auto sim = Simulation::Create(config);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  RoundStats stats = (*sim)->RunRound();
  EXPECT_EQ(stats.router_shards, 5);
  EXPECT_GT(stats.router_entries, 0);
  EXPECT_GT(stats.router_groups, 0);
  EXPECT_GE(stats.select_ms, 0.0);
  EXPECT_GT(stats.train_ms, 0.0);
  EXPECT_GE(stats.route_ms, 0.0);
  EXPECT_GE(stats.apply_ms, 0.0);
  EXPECT_EQ(stats.interaction_ms, 0.0);  // MF has no interaction stage
}

// Explicit shard overrides leave a full multi-round simulation
// bit-identical to the derived-shard default (different partitionings,
// same bits).
TEST(UpdateRouterTest, SimulationBitIdenticalAcrossShardCounts) {
  auto make = [](int shards) {
    ExperimentConfig config;
    config.dataset = MovieLens100KConfig(0.05);
    config.embedding_dim = 8;
    config.rounds = 0;
    config.users_per_round = 16;
    config.num_threads = 3;
    config.router_shards = shards;
    config.attack = AttackKind::kPieckIpe;
    config.malicious_fraction = 0.1;
    config.defense = DefenseKind::kMedian;
    auto sim = Simulation::Create(config);
    EXPECT_TRUE(sim.ok()) << sim.status().ToString();
    return std::move(sim).value();
  };
  std::unique_ptr<Simulation> derived = make(0);
  std::unique_ptr<Simulation> sharded = make(13);
  derived->RunRounds(3);
  sharded->RunRounds(3);
  ASSERT_EQ(derived->global().item_embeddings,
            sharded->global().item_embeddings);
}

}  // namespace
}  // namespace pieck
