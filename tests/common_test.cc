#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/status_or.h"
#include "common/string_util.h"

namespace pieck {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

Status ReturnsIfError(bool fail) {
  PIECK_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(ReturnsIfError(false).ok());
  EXPECT_EQ(ReturnsIfError(true).code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Doubled(StatusOr<int> in) {
  PIECK_ASSIGN_OR_RETURN(int x, in);
  return 2 * x;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  auto err = Doubled(Status::Internal("bad"));
  EXPECT_FALSE(err.ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(5));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 5);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    any_diff |= a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformRealBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(7);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(7);
  std::vector<int> s = rng.SampleWithoutReplacement(100, 30);
  std::set<int> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementAllWhenKExceedsN) {
  Rng rng(7);
  std::vector<int> s = rng.SampleWithoutReplacement(5, 50);
  std::set<int> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(RngTest, SampleDiscreteRespectsWeights) {
  Rng rng(7);
  std::vector<double> w = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.SampleDiscrete(w), 1);
}

TEST(RngTest, SampleDiscreteEmptyOrZero) {
  Rng rng(7);
  EXPECT_EQ(rng.SampleDiscrete({}), -1);
  EXPECT_EQ(rng.SampleDiscrete({0.0, 0.0}), -1);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(7);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(9);
  Rng child = a.Fork();
  // The fork must not simply mirror the parent.
  bool differs = false;
  Rng b(9);
  Rng child_b = b.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child.UniformInt(0, 1 << 20), child_b.UniformInt(0, 1 << 20));
    differs |= true;
  }
  EXPECT_TRUE(differs);
}

TEST(FlagParserTest, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "4.5", "--flag"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(5, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("beta", 0.0), 4.5);
  EXPECT_TRUE(flags.GetBool("flag", false));
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_EQ(flags.GetString("missing", "d"), "d");
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagParserTest, PositionalArguments) {
  const char* argv[] = {"prog", "pos1", "--x=1", "pos2"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(4, const_cast<char**>(argv)).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "pos1");
  EXPECT_EQ(flags.positional()[1], "pos2");
}

TEST(FlagParserTest, RejectsBareDashes) {
  const char* argv[] = {"prog", "--"};
  FlagParser flags;
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(StringUtilTest, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(StrJoin(parts, ","), "a,b,c");
  EXPECT_EQ(StrSplit("a,b,c", ','), parts);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  std::vector<std::string> expect = {"", "x", ""};
  EXPECT_EQ(StrSplit(",x,", ','), expect);
}

TEST(StringUtilTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
}

TEST(StringUtilTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.9339), "93.39");
  EXPECT_EQ(FormatPercent(1.0), "100.00");
}

}  // namespace
}  // namespace pieck
