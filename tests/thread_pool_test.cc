#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace pieck {
namespace {

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(-3);
  EXPECT_EQ(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  pool.Submit([] {});
  pool.Wait();
  pool.Wait();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<int> hits(n, 0);
  // Disjoint per-index writes: no synchronization needed.
  pool.ParallelFor(n, [&hits](size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(n));
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForZeroAndOneIndex) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL() << "fn called for n = 0"; });
  int calls = 0;
  pool.ParallelFor(1, [&calls](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SubmittedTaskExceptionRethrownFromWait) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error is consumed: the pool stays usable afterwards.
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [](size_t i) {
                         if (i == 13) throw std::runtime_error("unlucky");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SerialPoolParallelForPropagatesException) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.ParallelFor(4, [](size_t) { throw std::logic_error("inline"); }),
      std::logic_error);
}

TEST(ThreadPoolTest, DestructorDrainsPendingQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        count.fetch_add(1);
      });
    }
    // No Wait(): destruction must still run all 50 queued tasks.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace pieck
