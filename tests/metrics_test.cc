#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/report.h"
#include "data/synthetic.h"
#include "fed/client_state_store.h"
#include "metrics/evaluation.h"
#include "model/mf_model.h"

namespace pieck {
namespace {

constexpr int kDim = 4;

/// Fixture with a tiny deterministic world: a few benign users whose
/// embeddings we can steer so top-K lists are predictable. The benign
/// population is a plain embedding matrix behind a BenignEvalView —
/// exactly what the store hands the metrics.
class MetricsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ds = Dataset::FromInteractions(
        3, 5, {{0, 0}, {0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 2}});
    ASSERT_TRUE(ds.ok());
    train_ = std::make_unique<Dataset>(std::move(*ds));
    model_ = std::make_unique<MfModel>(kDim);
    Rng rng(3);
    global_ = model_->InitGlobalModel(5, rng);
    embeddings_ = Matrix(3, kDim);
    for (int u = 0; u < 3; ++u) {
      Rng fork = rng.Fork();
      embeddings_.SetRow(static_cast<size_t>(u),
                         model_->InitUserEmbedding(fork));
    }
    views_ = BenignEvalView(&embeddings_);
  }

  /// Makes `item`'s embedding hugely aligned with every user so it tops
  /// all score lists.
  void BoostItem(int item) {
    Vec v(kDim, 0.0);
    for (size_t ui = 0; ui < views_.size(); ++ui) {
      Axpy(10.0, views_.embedding_vec(ui), v);
    }
    global_.item_embeddings.SetRow(static_cast<size_t>(item), v);
  }

  std::unique_ptr<Dataset> train_;
  std::unique_ptr<MfModel> model_;
  GlobalModel global_;
  Matrix embeddings_;
  BenignEvalView views_;
};

TEST_F(MetricsFixture, ErIsZeroForBuriedItem) {
  // Make item 4 maximally repulsive for everyone.
  Vec v(kDim, 0.0);
  for (size_t ui = 0; ui < views_.size(); ++ui) {
    Axpy(-10.0, views_.embedding_vec(ui), v);
  }
  global_.item_embeddings.SetRow(4, v);
  double er = ExposureRatioAtK(*model_, global_, views_, *train_, {4},
                               /*k=*/1);
  EXPECT_DOUBLE_EQ(er, 0.0);
}

TEST_F(MetricsFixture, ErIsOneForBoostedItem) {
  BoostItem(4);
  double er = ExposureRatioAtK(*model_, global_, views_, *train_, {4}, 1);
  EXPECT_DOUBLE_EQ(er, 1.0);
}

TEST_F(MetricsFixture, ErExcludesUsersWhoInteracted) {
  // Item 0 was interacted by users 0 and 1; only user 2 counts.
  BoostItem(0);
  double er = ExposureRatioAtK(*model_, global_, views_, *train_, {0}, 1);
  EXPECT_DOUBLE_EQ(er, 1.0);  // user 2 sees it at rank 1
}

TEST_F(MetricsFixture, ErAveragesOverTargets) {
  BoostItem(4);
  // Item 3 stays random (likely not rank-1), item 4 is boosted.
  double er_both =
      ExposureRatioAtK(*model_, global_, views_, *train_, {4, 3}, 1);
  EXPECT_GE(er_both, 0.5);
  EXPECT_LE(er_both, 1.0);
}

TEST_F(MetricsFixture, HitRatioPerfectWhenTestItemBoosted) {
  BoostItem(3);
  std::vector<int> test_items = {3, 3, 3};
  double hr = HitRatioAtK(*model_, global_, views_, *train_, test_items,
                          /*k=*/1, /*num_negatives=*/2, /*seed=*/7);
  EXPECT_DOUBLE_EQ(hr, 1.0);
}

TEST_F(MetricsFixture, HitRatioSkipsUsersWithoutTestItem) {
  std::vector<int> test_items = {-1, -1, -1};
  double hr = HitRatioAtK(*model_, global_, views_, *train_, test_items, 1,
                          2, 7);
  EXPECT_DOUBLE_EQ(hr, 0.0);
}

TEST_F(MetricsFixture, HitRatioDeterministicInSeed) {
  std::vector<int> test_items = {0, 2, 1};
  double a = HitRatioAtK(*model_, global_, views_, *train_, test_items, 2, 3,
                         11);
  double b = HitRatioAtK(*model_, global_, views_, *train_, test_items, 2, 3,
                         11);
  EXPECT_DOUBLE_EQ(a, b);
}

// Dense-user regression: when a user has interacted with nearly every
// item, rejection sampling cannot produce `num_negatives` distinct
// negatives. HR must then rank the test item against every uninteracted
// item (deterministic scan) instead of a silently short sample.
TEST(HitRatioDenseUserTest, FallsBackToFullScanForDenseUsers) {
  // User 0 interacted with 8 of 10 items; test item is 8, so item 9 is
  // the only possible negative — far fewer than the 5 requested.
  std::vector<Interaction> raw;
  for (int j = 0; j < 8; ++j) raw.push_back({0, j});
  auto ds = Dataset::FromInteractions(1, 10, raw);
  ASSERT_TRUE(ds.ok());
  MfModel model(kDim);
  Rng rng(5);
  GlobalModel global = model.InitGlobalModel(10, rng);
  Matrix embeddings(1, kDim);
  {
    Rng fork = rng.Fork();
    embeddings.SetRow(0, model.InitUserEmbedding(fork));
  }
  BenignEvalView views(&embeddings);
  std::vector<int> test_items = {8};

  // Make the test item outscore item 9 for this user: HR@1 must be 1.
  Vec boosted(kDim, 0.0);
  Axpy(10.0, views.embedding_vec(0), boosted);
  global.item_embeddings.SetRow(8, boosted);
  Vec buried(kDim, 0.0);
  Axpy(-10.0, views.embedding_vec(0), buried);
  global.item_embeddings.SetRow(9, buried);

  double hr = HitRatioAtK(model, global, views, *ds, test_items, /*k=*/1,
                          /*num_negatives=*/5, /*seed=*/7);
  EXPECT_DOUBLE_EQ(hr, 1.0);

  // Flip the ordering: the single real negative outscores the test item,
  // so with the full-scan fallback HR@1 must be exactly 0 — a short
  // sample of zero negatives would (wrongly) report a hit.
  global.item_embeddings.SetRow(8, buried);
  global.item_embeddings.SetRow(9, boosted);
  hr = HitRatioAtK(model, global, views, *ds, test_items, 1, 5, 7);
  EXPECT_DOUBLE_EQ(hr, 0.0);

  // The fallback is deterministic: the seed cannot matter.
  EXPECT_DOUBLE_EQ(HitRatioAtK(model, global, views, *ds, test_items, 1, 5,
                               999),
                   hr);
}

// The fan-out over users must be bit-identical for any pool size.
TEST_F(MetricsFixture, MetricsIdenticalWithAndWithoutPool) {
  BoostItem(4);
  ThreadPool pool(3);
  std::vector<int> test_items = {0, 2, 1};

  EXPECT_DOUBLE_EQ(
      ExposureRatioAtK(*model_, global_, views_, *train_, {4, 3}, 2),
      ExposureRatioAtK(*model_, global_, views_, *train_, {4, 3}, 2, &pool));
  EXPECT_DOUBLE_EQ(
      HitRatioAtK(*model_, global_, views_, *train_, test_items, 2, 3, 11),
      HitRatioAtK(*model_, global_, views_, *train_, test_items, 2, 3, 11,
                  &pool));
  EXPECT_DOUBLE_EQ(
      PairwiseKlDivergence(global_, views_, *train_, {0, 1}),
      PairwiseKlDivergence(global_, views_, *train_, {0, 1}, &pool));
}

TEST_F(MetricsFixture, UcrCountsCoveredUsers) {
  // Item 0 covers users 0 and 1 -> 2/3.
  EXPECT_NEAR(UserCoverageRatio(*train_, {0}), 2.0 / 3.0, 1e-12);
  // Items {0, 1} cover everyone.
  EXPECT_DOUBLE_EQ(UserCoverageRatio(*train_, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(UserCoverageRatio(*train_, {}), 0.0);
}

TEST_F(MetricsFixture, PklIsSmallForIdenticalDistributions) {
  // Make item 0's embedding identical to the probed user's embedding:
  // the pairwise KL over that single pair must vanish. A sub-view over
  // just user 0 exercises the explicit user-id mapping.
  global_.item_embeddings.SetRow(0, views_.embedding_vec(0));
  Matrix one_user(1, kDim);
  one_user.SetRow(0, views_.embedding_vec(0));
  BenignEvalView single(&one_user, {0});
  double pkl = PairwiseKlDivergence(global_, single, *train_, {0});
  EXPECT_NEAR(pkl, 0.0, 1e-9);
}

TEST_F(MetricsFixture, PklPositiveForDifferentDistributions) {
  Vec v(kDim);
  for (int c = 0; c < kDim; ++c) v[static_cast<size_t>(c)] = c * 3.0 - 4.0;
  global_.item_embeddings.SetRow(0, v);
  double pkl = PairwiseKlDivergence(global_, views_, *train_, {0});
  EXPECT_GT(pkl, 0.0);
}

TEST_F(MetricsFixture, MeanScoreForItemInUnitRange) {
  double s = MeanScoreForItem(*model_, global_, views_, 2);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

// K beyond the item table: every uninteracted item is "in the top K",
// so ER counts every eligible user and HR cannot miss.
TEST_F(MetricsFixture, ErAndHrWithKBeyondItemCount) {
  // k = 50 on a 5-item table: target 4 (uninteracted by everyone) is
  // trivially within the top 50 for all 3 users.
  double er = ExposureRatioAtK(*model_, global_, views_, *train_, {4},
                               /*k=*/50);
  EXPECT_DOUBLE_EQ(er, 1.0);
  // Same for an interacted target: only its non-interactors count, and
  // each of them sees it.
  er = ExposureRatioAtK(*model_, global_, views_, *train_, {0}, 50);
  EXPECT_DOUBLE_EQ(er, 1.0);

  // HR@50 with 2 negatives: at most 2 items can outscore the test item,
  // so every evaluated user hits.
  std::vector<int> test_items = {3, 4, 3};
  double hr = HitRatioAtK(*model_, global_, views_, *train_, test_items,
                          /*k=*/50, /*num_negatives=*/2, /*seed=*/7);
  EXPECT_DOUBLE_EQ(hr, 1.0);
}

TEST(TopDeltaNormTest, TopKZeroYieldsEmpty) {
  auto ds = Dataset::FromInteractions(2, 4, {{0, 0}, {1, 0}, {0, 1}});
  ASSERT_TRUE(ds.ok());
  Vec delta = {0.1, 5.0, 0.0, 2.0};
  EXPECT_TRUE(TopDeltaNormPopularityRanks(delta, *ds, 0).empty());
}

TEST(TopDeltaNormTest, TopKBeyondItemCountReturnsAllRanked) {
  auto ds = Dataset::FromInteractions(
      2, 4, {{0, 0}, {1, 0}, {0, 1}});  // popularity: 0 > 1 > {2, 3}
  ASSERT_TRUE(ds.ok());
  Vec delta = {0.1, 5.0, 0.0, 2.0};  // Δ-norm order: 1, 3, 0, 2
  std::vector<int> ranks = TopDeltaNormPopularityRanks(delta, *ds, 100);
  ASSERT_EQ(ranks.size(), 4u);  // clamped to the item count
  EXPECT_EQ(ranks[0], 1);
  EXPECT_EQ(ranks[1], 3);
  EXPECT_EQ(ranks[2], 0);
  EXPECT_EQ(ranks[3], 2);
}

TEST(TopDeltaNormTest, MapsToPopularityRanks) {
  auto ds = Dataset::FromInteractions(
      2, 4, {{0, 0}, {1, 0}, {0, 1}});  // popularity: 0 > 1 > {2, 3}
  ASSERT_TRUE(ds.ok());
  Vec delta = {0.1, 5.0, 0.0, 2.0};  // Δ-norm order: 1, 3, 0, 2
  std::vector<int> ranks = TopDeltaNormPopularityRanks(delta, *ds, 2);
  ASSERT_EQ(ranks.size(), 2u);
  EXPECT_EQ(ranks[0], 1);  // item 1 has popularity rank 1
  EXPECT_EQ(ranks[1], 3);  // item 3 has popularity rank 3
}

TEST(TablePrinterTest, AlignedOutput) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "2.5"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| long-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace pieck
