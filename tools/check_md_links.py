#!/usr/bin/env python3
"""Fails (exit 1) when any *.md file in the repo contains a relative
link to a file that does not exist.

Checked: inline links/images `[text](target)` whose target is not an
absolute URL (http/https/mailto) or a pure in-page anchor (#...).
Fragments are stripped before the existence check. Run from anywhere;
paths resolve relative to each markdown file's directory.
"""

import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def repo_root() -> str:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True, check=True,
    )
    return out.stdout.strip()


def markdown_files(root: str) -> list:
    out = subprocess.run(
        ["git", "ls-files", "-z", "--cached", "--others",
         "--exclude-standard", "*.md", "**/*.md"],
        capture_output=True, text=True, check=True, cwd=root,
    )
    return sorted({p for p in out.stdout.split("\0") if p})


def main() -> int:
    root = repo_root()
    broken = []
    for md in markdown_files(root):
        md_path = os.path.join(root, md)
        with open(md_path, encoding="utf-8") as f:
            text = f.read()
        # Fenced code blocks routinely contain notation like [text](x)
        # that is not a link; drop them before scanning.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), path))
            if not os.path.exists(resolved):
                broken.append(f"{md}: broken link -> {target}")
    if broken:
        print("\n".join(broken))
        print(f"\n{len(broken)} broken relative link(s).")
        return 1
    print("All relative markdown links resolve.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
