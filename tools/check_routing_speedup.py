#!/usr/bin/env python3
"""Regression gate for the sharded update router.

Reads a kernels JSON produced by `bench_microkernels --kernels_json`
and asserts the routing sweep shows the arena-reused router beating the
retired std::map grouping at the 512-upload scale point (the default
round batch of bench_scale_users). CI runs this on the Release build;
see .github/workflows/ci.yml.

Usage: check_routing_speedup.py [kernels.json] [--min-speedup X]
"""

import json
import sys


def main(argv):
    path = "BENCH_kernels.json"
    min_speedup = 1.0
    args = list(argv[1:])
    while args:
        arg = args.pop(0)
        if arg == "--min-speedup":
            min_speedup = float(args.pop(0))
        else:
            path = arg

    with open(path) as f:
        data = json.load(f)
    routing = data.get("routing")
    if routing is None:
        return f"{path}: no 'routing' section (rerun the kernel sweep)"
    points = [p for p in routing.get("sweep", []) if p["uploads"] == 512]
    if not points:
        return f"{path}: routing sweep has no 512-upload scale point"

    failed = False
    for p in points:
        verdict = "ok" if p["speedup"] > min_speedup else "FAIL"
        failed |= verdict == "FAIL"
        print(
            f"routing uploads={p['uploads']} "
            f"items_per_upload={p['items_per_upload']}: "
            f"map {p['map_ns']:.0f} ns, router {p['router_ns']:.0f} ns, "
            f"{p['speedup']:.2f}x [{verdict}]"
        )
    if failed:
        return (
            f"router did not beat the map baseline (>{min_speedup:.2f}x) "
            "at every 512-upload point"
        )
    print(f"OK: router beats the map baseline (> {min_speedup:.2f}x) at 512 uploads")
    return None


if __name__ == "__main__":
    sys.exit(main(sys.argv))
