#!/usr/bin/env python3
"""Consolidated gate for the benchmark JSON artifacts CI produces.

Subcommands (one per artifact family):

  routing  <kernels.json>  [--min-speedup X]
      Kernel sweep from `bench_microkernels --kernels_json`: the
      arena-reused sharded router must beat the retired std::map
      grouping at the 512-upload scale point (the default round batch).

  scale    <scale.json>    [--max-bytes-per-user X]
      Population sweep from `bench_scale_users --json`: validates the
      schema (per-run config, workload metadata, per-stage latency
      histograms) and optionally caps the store's bytes/user.

  workload <scale.json>    [--max-p99-p50 X] [--min-active-fraction F]
      Tail-latency gate for the workload-smoke job: same schema
      validation as `scale`, plus the round-stage p99/p50 ratio must
      stay under the bound (catches a degenerate traffic model whose
      skew or churn turns individual rounds pathological) and the
      churned active population must stay above F x users.

  serving  <serving.json>  [--min-users-per-sec X] [--min-recall R]
      Top-K serving gate from `bench_serving --json`: validates the
      schema (one entry per scoring mode), requires the exact modes to
      report in-run bitwise agreement with the full-scan oracle
      (exact == true), the quantized shortlist recall to clear R, and
      the fused mode's throughput to clear the users/s floor.

  async    <scale.json>    [--min-overlap-speedup X]
      Bounded-staleness gate from `bench_scale_users --depth_compare
      --json`: same schema validation as `scale`, plus the `async`
      comparison section must exist, its staleness histogram must match
      the pipeline's static schedule (depth buckets, every bucket
      populated, mean within [0, depth-1]), and the depth-D round
      throughput must clear X times the depth-1 throughput.

  storage  <scale.json>    [--require-backend B] [--max-rss-mb X]
           [--min-rounds-per-sec X] [--min-hit-rate F]
           [--require-compare-identical] [--require-engine E]
           [--allow-engine-fallback] [--max-shard-imbalance R]
           [--min-engine-speedup X]
      Beyond-RAM storage gate from `bench_scale_users --storage mmap
      --json` (see docs/STORAGE.md): same schema validation as `scale`
      plus the per-run `storage` object; optionally requires runs of
      backend B with peak RSS, round throughput, and hot-row cache hit
      rate within bounds, and (for --backend_compare artifacts) the
      `storage_compare` section to report bitwise RAM/mmap agreement
      under every I/O engine it swept. `--require-engine` pins the
      resolved cold-row I/O engine (`--allow-engine-fallback` accepts
      the documented io_uring -> pread-batch degrade on kernels without
      rings). Per-shard hot-row-cache counters must always sum to the
      store totals; `--max-shard-imbalance` additionally caps the
      max/min shard hit-rate ratio. `--min-engine-speedup` gates the
      `io_engine_compare` section from `--engine_compare` artifacts:
      every batched engine must clear X times the mmap-touch round
      throughput.

Every subcommand prints what it measured and exits non-zero with a
reason on failure. See .github/workflows/ci.yml for the wiring.
"""

import argparse
import json
import sys

LATENCY_STAGES = (
    "select",
    "train",
    "route",
    "apply",
    "interaction",
    "stall",
    "round",
)
LATENCY_FIELDS = ("p50", "p95", "p99", "mean", "max", "count")
WORKLOAD_FIELDS = (
    "participation",
    "zipf_exponent",
    "exponential_rate",
    "diurnal_amplitude",
    "diurnal_period",
    "churn_join_rate",
    "churn_leave_rate",
    "churn_initial_active",
    "hot_item_fraction",
    "hot_item_rate",
    "active_benign_final",
    "num_selected_final",
)
RUN_FIELDS = (
    "users",
    "items",
    "dim",
    "threads",
    "users_per_round",
    "rounds",
    "bytes_per_user",
    "store_mb",
    "rounds_per_sec",
    "clients_per_sec",
    "peak_rss_mb",
    "pipeline_depth",
    "mean_staleness",
    "max_staleness",
    "dropped_stale",
    "staleness_hist",
    "storage",
    "workload",
    "latency_ms",
)
STORAGE_FIELDS = (
    "backend",
    "io_engine",
    "cache_rows",
    "backing_mb",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_writebacks",
    "cache_hit_rate",
    "io_read_runs",
    "io_write_runs",
    "staged_rows",
    "staged_hits",
    "prefetched_rows",
    "prefetch_ranges",
    "trims",
)
# Present only on mmap runs (the cache exists there).
STORAGE_SHARD_FIELDS = (
    "shard_hit_rate_min",
    "shard_hit_rate_max",
    "shard_hit_rate_ratio",
    "shards",
)
COMPARE_FIELDS = (
    "users",
    "engine",
    "identical",
    "ram_digest",
    "mmap_digest",
    "rounds_per_sec_ram",
    "rounds_per_sec_mmap",
)
ENGINE_COMPARE_FIELDS = (
    "users",
    "engine",
    "rounds_per_sec_mmap_touch",
    "rounds_per_sec",
    "speedup",
)
IO_ENGINES = ("mmap-touch", "pread-batch", "io_uring")
ASYNC_FIELDS = (
    "users",
    "depth",
    "rounds_per_sec_depth1",
    "rounds_per_sec",
    "overlap_speedup",
    "mean_staleness",
    "max_staleness",
    "dropped_stale",
    "staleness_hist",
)


def load(path):
    with open(path) as f:
        return json.load(f)


def validate_scale_schema(path, data):
    """Returns the validated run list or raises SystemExit with a reason."""
    runs = data.get("scale_users")
    if not isinstance(runs, list) or not runs:
        sys.exit(f"{path}: no 'scale_users' array (rerun bench_scale_users)")
    for i, run in enumerate(runs):
        for field in RUN_FIELDS:
            if field not in run:
                sys.exit(f"{path}: scale_users[{i}] missing '{field}'")
        workload = run["workload"]
        for field in WORKLOAD_FIELDS:
            if field not in workload:
                sys.exit(f"{path}: scale_users[{i}].workload missing '{field}'")
        latency = run["latency_ms"]
        for stage in LATENCY_STAGES:
            hist = latency.get(stage)
            if hist is None:
                sys.exit(f"{path}: scale_users[{i}].latency_ms missing '{stage}'")
            for field in LATENCY_FIELDS:
                if field not in hist:
                    sys.exit(
                        f"{path}: scale_users[{i}].latency_ms.{stage} "
                        f"missing '{field}'"
                    )
            if hist["count"] != run["rounds"]:
                sys.exit(
                    f"{path}: scale_users[{i}].latency_ms.{stage} recorded "
                    f"{hist['count']} rounds, config says {run['rounds']}"
                )
            if not hist["p50"] <= hist["p95"] <= hist["p99"] <= hist["max"]:
                sys.exit(
                    f"{path}: scale_users[{i}].latency_ms.{stage} quantiles "
                    f"not monotone: {hist}"
                )
    return runs


def cmd_routing(args):
    data = load(args.json)
    routing = data.get("routing")
    if routing is None:
        sys.exit(f"{args.json}: no 'routing' section (rerun the kernel sweep)")
    points = [p for p in routing.get("sweep", []) if p["uploads"] == 512]
    if not points:
        sys.exit(f"{args.json}: routing sweep has no 512-upload scale point")

    failed = False
    for p in points:
        verdict = "ok" if p["speedup"] > args.min_speedup else "FAIL"
        failed |= verdict == "FAIL"
        print(
            f"routing uploads={p['uploads']} "
            f"items_per_upload={p['items_per_upload']}: "
            f"map {p['map_ns']:.0f} ns, router {p['router_ns']:.0f} ns, "
            f"{p['speedup']:.2f}x [{verdict}]"
        )
    if failed:
        sys.exit(
            f"router did not beat the map baseline (>{args.min_speedup:.2f}x) "
            "at every 512-upload point"
        )
    print(
        f"OK: router beats the map baseline (> {args.min_speedup:.2f}x) "
        "at 512 uploads"
    )


def cmd_scale(args):
    runs = validate_scale_schema(args.json, load(args.json))
    for run in runs:
        print(
            f"scale users={run['users']} bytes/user={run['bytes_per_user']:.1f} "
            f"rounds/s={run['rounds_per_sec']:.2f} "
            f"peak_rss_mb={run['peak_rss_mb']:.1f}"
        )
        if args.max_bytes_per_user and run["bytes_per_user"] > args.max_bytes_per_user:
            sys.exit(
                f"store spends {run['bytes_per_user']:.1f} bytes/user at "
                f"{run['users']} users (cap {args.max_bytes_per_user:.1f})"
            )
    print(f"OK: {len(runs)} scale run(s) pass schema validation")


def cmd_workload(args):
    runs = validate_scale_schema(args.json, load(args.json))
    for run in runs:
        workload = run["workload"]
        hist = run["latency_ms"]["round"]
        ratio = hist["p99"] / hist["p50"] if hist["p50"] > 0 else float("inf")
        active_fraction = workload["active_benign_final"] / run["users"]
        print(
            f"workload={workload['participation']} users={run['users']} "
            f"active={workload['active_benign_final']} "
            f"round p50={hist['p50']:.3f} ms p99={hist['p99']:.3f} ms "
            f"(ratio {ratio:.2f})"
        )
        if workload["participation"] == "uniform" and not workload[
            "churn_join_rate"
        ]:
            sys.exit(
                f"{args.json}: workload gate ran on trivial uniform traffic — "
                "pass --workload zipf (or churn flags) to bench_scale_users"
            )
        if ratio > args.max_p99_p50:
            sys.exit(
                f"round p99/p50 ratio {ratio:.2f} exceeds {args.max_p99_p50:.2f} "
                f"at {run['users']} users: skewed selection must not make "
                "individual rounds pathological"
            )
        if active_fraction < args.min_active_fraction:
            sys.exit(
                f"churn collapsed the active population to "
                f"{active_fraction:.3f} of {run['users']} users "
                f"(floor {args.min_active_fraction:.3f})"
            )
    print(f"OK: {len(runs)} workload run(s) within tail-latency budget")


def check_staleness_hist(path, label, hist, depth, mean, rounds):
    """Sanity of one staleness histogram against the static schedule.

    With pipeline depth D and R >= D rounds, round i's uploads apply at
    staleness min(i, D-1): buckets 0..D-1 all receive uploads and no
    bucket beyond D-1 can exist (drops are counted separately, before
    the histogram).
    """
    if not isinstance(hist, list) or not hist:
        sys.exit(f"{path}: {label} staleness_hist missing or empty")
    if any(not isinstance(c, int) or c < 0 for c in hist):
        sys.exit(f"{path}: {label} staleness_hist has invalid counts: {hist}")
    if len(hist) > depth:
        sys.exit(
            f"{path}: {label} staleness_hist has {len(hist)} buckets — the "
            f"static schedule caps staleness at depth-1 = {depth - 1}"
        )
    if rounds >= depth and len(hist) < depth:
        sys.exit(
            f"{path}: {label} staleness_hist has {len(hist)} buckets over "
            f"{rounds} rounds — every staleness 0..{depth - 1} must occur"
        )
    if rounds >= depth and any(c == 0 for c in hist):
        sys.exit(f"{path}: {label} staleness_hist has an empty bucket: {hist}")
    expected_mean = sum(s * c for s, c in enumerate(hist)) / sum(hist)
    if abs(mean - expected_mean) > 5e-4:
        sys.exit(
            f"{path}: {label} mean_staleness {mean:.4f} does not match its "
            f"histogram ({expected_mean:.4f})"
        )


def cmd_async(args):
    data = load(args.json)
    runs = validate_scale_schema(args.json, data)
    compares = data.get("async")
    if not isinstance(compares, list) or not compares:
        sys.exit(
            f"{args.json}: no 'async' section — rerun bench_scale_users "
            "with --depth_compare"
        )
    for i, c in enumerate(compares):
        for field in ASYNC_FIELDS:
            if field not in c:
                sys.exit(f"{args.json}: async[{i}] missing '{field}'")
        depth = c["depth"]
        if depth < 2:
            sys.exit(f"{args.json}: async[{i}] compares depth {depth} (< 2)")
        deep = [
            r
            for r in runs
            if r["users"] == c["users"] and r["pipeline_depth"] == depth
        ]
        if not deep:
            sys.exit(
                f"{args.json}: async[{i}] has no matching depth-{depth} "
                f"run at {c['users']} users"
            )
        check_staleness_hist(
            args.json,
            f"async[{i}]",
            c["staleness_hist"],
            depth,
            c["mean_staleness"],
            deep[0]["rounds"],
        )
        print(
            f"async users={c['users']} depth={depth}: "
            f"{c['rounds_per_sec_depth1']:.2f} -> {c['rounds_per_sec']:.2f} "
            f"rounds/s ({c['overlap_speedup']:.3f}x), "
            f"mean staleness {c['mean_staleness']:.2f}, "
            f"dropped {c['dropped_stale']}"
        )
        if args.min_overlap_speedup and c["overlap_speedup"] < args.min_overlap_speedup:
            sys.exit(
                f"overlap speedup {c['overlap_speedup']:.3f}x below floor "
                f"{args.min_overlap_speedup:.2f}x at {c['users']} users: "
                "the pipelined engine must actually overlap stages"
            )
    print(f"OK: {len(compares)} async comparison(s) pass")


def check_shards(path, i, run, max_imbalance):
    """Per-shard counters of one mmap run: schema, totals, imbalance."""
    storage = run["storage"]
    for field in STORAGE_SHARD_FIELDS:
        if field not in storage:
            sys.exit(f"{path}: scale_users[{i}].storage missing '{field}'")
    shards = storage["shards"]
    if not isinstance(shards, list) or not shards:
        sys.exit(f"{path}: scale_users[{i}].storage.shards missing or empty")
    for total_key, shard_key in (
        ("cache_hits", "hits"),
        ("cache_misses", "misses"),
        ("cache_evictions", "evictions"),
    ):
        shard_sum = sum(s[shard_key] for s in shards)
        if shard_sum != storage[total_key]:
            sys.exit(
                f"{path}: scale_users[{i}] shard {shard_key} sum to "
                f"{shard_sum}, store counted {storage[total_key]} — the "
                "per-shard counters must partition the totals exactly"
            )
    ratio = storage["shard_hit_rate_ratio"]
    if max_imbalance and ratio > max_imbalance:
        sys.exit(
            f"{path}: shard hit-rate imbalance {ratio:.2f} exceeds "
            f"{max_imbalance:.2f} at {run['users']} users (min "
            f"{storage['shard_hit_rate_min']:.3f}, max "
            f"{storage['shard_hit_rate_max']:.3f}): one cache shard is "
            "doing disproportionate work"
        )


def cmd_storage(args):
    data = load(args.json)
    runs = validate_scale_schema(args.json, data)
    for i, run in enumerate(runs):
        storage = run["storage"]
        for field in STORAGE_FIELDS:
            if field not in storage:
                sys.exit(f"{args.json}: scale_users[{i}].storage missing '{field}'")
        if storage["backend"] == "mmap":
            if storage["io_engine"] not in IO_ENGINES:
                sys.exit(
                    f"{args.json}: scale_users[{i}] resolved to unknown "
                    f"io_engine '{storage['io_engine']}'"
                )
            check_shards(args.json, i, run, args.max_shard_imbalance)

    checked = [
        r
        for r in runs
        if not args.require_backend
        or r["storage"]["backend"] == args.require_backend
    ]
    if args.require_backend and not checked:
        sys.exit(
            f"{args.json}: no run used the '{args.require_backend}' backend — "
            f"pass --storage {args.require_backend} to bench_scale_users"
        )
    for run in checked:
        storage = run["storage"]
        print(
            f"storage backend={storage['backend']} "
            f"engine={storage['io_engine'] or '-'} users={run['users']} "
            f"cache_rows={storage['cache_rows']} "
            f"hit_rate={storage['cache_hit_rate']:.3f} "
            f"backing_mb={storage['backing_mb']:.1f} "
            f"io_runs={storage['io_read_runs']}r/{storage['io_write_runs']}w "
            f"staged={storage['staged_hits']}/{storage['staged_rows']} "
            f"rounds/s={run['rounds_per_sec']:.2f} "
            f"peak_rss_mb={run['peak_rss_mb']:.1f}"
        )
        if storage["backend"] == "mmap" and storage["backing_mb"] <= 0:
            sys.exit(
                f"mmap run at {run['users']} users reports no backing bytes — "
                "the store is not actually file-backed"
            )
        if args.require_engine and storage["backend"] == "mmap":
            got = storage["io_engine"]
            fallback_ok = (
                args.allow_engine_fallback
                and args.require_engine == "io_uring"
                and got == "pread-batch"
            )
            if got != args.require_engine and not fallback_ok:
                sys.exit(
                    f"run at {run['users']} users resolved to io_engine "
                    f"'{got}', gate requires '{args.require_engine}'"
                    + (
                        " (fallback not allowed)"
                        if args.require_engine == "io_uring"
                        else ""
                    )
                )
        if args.max_rss_mb and run["peak_rss_mb"] > args.max_rss_mb:
            sys.exit(
                f"peak RSS {run['peak_rss_mb']:.1f} MB exceeds "
                f"{args.max_rss_mb:.1f} MB at {run['users']} users: the tier "
                "must keep beyond-RAM populations resident-bounded"
            )
        if args.min_rounds_per_sec and run["rounds_per_sec"] < args.min_rounds_per_sec:
            sys.exit(
                f"{run['rounds_per_sec']:.2f} rounds/s below floor "
                f"{args.min_rounds_per_sec:.2f} at {run['users']} users"
            )
        if (
            args.min_hit_rate
            and storage["backend"] == "mmap"
            and storage["cache_hit_rate"] < args.min_hit_rate
        ):
            sys.exit(
                f"hot-row cache hit rate {storage['cache_hit_rate']:.3f} below "
                f"floor {args.min_hit_rate:.3f} at {run['users']} users"
            )

    if args.require_compare_identical:
        compares = data.get("storage_compare")
        if not isinstance(compares, list) or not compares:
            sys.exit(
                f"{args.json}: no 'storage_compare' section — rerun "
                "bench_scale_users with --backend_compare"
            )
        for i, c in enumerate(compares):
            for field in COMPARE_FIELDS:
                if field not in c:
                    sys.exit(f"{args.json}: storage_compare[{i}] missing '{field}'")
            print(
                f"compare users={c['users']} engine={c['engine']} "
                f"identical={c['identical']} "
                f"(ram {c['ram_digest']} vs mmap {c['mmap_digest']})"
            )
            if c["engine"] not in IO_ENGINES:
                sys.exit(
                    f"{args.json}: storage_compare[{i}] has unknown engine "
                    f"'{c['engine']}'"
                )
            if not c["identical"]:
                sys.exit(
                    f"mmap run ({c['engine']}) diverged from RAM at "
                    f"{c['users']} users: storage must never change results"
                )

    if args.min_engine_speedup:
        compares = data.get("io_engine_compare")
        if not isinstance(compares, list) or not compares:
            sys.exit(
                f"{args.json}: no 'io_engine_compare' section — rerun "
                "bench_scale_users with --engine_compare"
            )
        for i, c in enumerate(compares):
            for field in ENGINE_COMPARE_FIELDS:
                if field not in c:
                    sys.exit(
                        f"{args.json}: io_engine_compare[{i}] missing '{field}'"
                    )
            print(
                f"engine compare users={c['users']} engine={c['engine']}: "
                f"mmap-touch {c['rounds_per_sec_mmap_touch']:.2f} -> "
                f"{c['rounds_per_sec']:.2f} rounds/s ({c['speedup']:.3f}x)"
            )
            if c["speedup"] < args.min_engine_speedup:
                sys.exit(
                    f"engine '{c['engine']}' speedup {c['speedup']:.3f}x "
                    f"below floor {args.min_engine_speedup:.2f}x at "
                    f"{c['users']} users: the batched engine must beat "
                    "demand paging"
                )
    print(f"OK: {len(checked)} storage run(s) within budget")


SERVING_FIELDS = (
    "mode",
    "users",
    "items",
    "dim",
    "k",
    "threads",
    "backend",
    "users_per_sec",
    "users_served",
    "elapsed_s",
    "exact",
    "recall_at_k",
    "tiles_pruned_frac",
    "footprint_mb",
    "peak_rss_mb",
)
SERVING_MODES = ("full_scan", "fused", "quantized")


def cmd_serving(args):
    data = load(args.json)
    runs = data.get("serving")
    if not isinstance(runs, list) or not runs:
        sys.exit(f"{args.json}: no 'serving' array (rerun bench_serving)")
    by_mode = {}
    for i, run in enumerate(runs):
        for field in SERVING_FIELDS:
            if field not in run:
                sys.exit(f"{args.json}: serving[{i}] missing '{field}'")
        by_mode[run["mode"]] = run
    for mode in SERVING_MODES:
        if mode not in by_mode:
            sys.exit(f"{args.json}: serving is missing mode '{mode}'")

    for run in runs:
        print(
            f"serving mode={run['mode']} k={run['k']} "
            f"users/s={run['users_per_sec']:.0f} exact={run['exact']} "
            f"recall@k={run['recall_at_k']:.5f} "
            f"pruned={run['tiles_pruned_frac']:.2%}"
        )
    # Exactness is non-negotiable for the exact modes: the benchmark
    # verifies bit-identity against the full scan in-run and records the
    # verdict here.
    for mode in ("full_scan", "fused"):
        if not by_mode[mode]["exact"]:
            sys.exit(f"{mode} serving diverged from the full-scan oracle")
    if by_mode["quantized"]["recall_at_k"] < args.min_recall:
        sys.exit(
            f"quantized recall@k {by_mode['quantized']['recall_at_k']:.5f} "
            f"below floor {args.min_recall:.5f}"
        )
    fused = by_mode["fused"]
    if args.min_users_per_sec and fused["users_per_sec"] < args.min_users_per_sec:
        sys.exit(
            f"fused serving {fused['users_per_sec']:.0f} users/s below floor "
            f"{args.min_users_per_sec:.0f} "
            f"(users={fused['users']} items={fused['items']} "
            f"dim={fused['dim']} k={fused['k']} threads={fused['threads']})"
        )
    print(
        f"OK: serving exact + recall >= {args.min_recall:.3f}"
        + (
            f", fused >= {args.min_users_per_sec:.0f} users/s"
            if args.min_users_per_sec
            else ""
        )
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("routing", help="router-vs-map kernel sweep gate")
    p.add_argument("json")
    p.add_argument("--min-speedup", type=float, default=1.0)
    p.set_defaults(func=cmd_routing)

    p = sub.add_parser("scale", help="scale sweep schema + footprint gate")
    p.add_argument("json")
    p.add_argument("--max-bytes-per-user", type=float, default=0.0)
    p.set_defaults(func=cmd_scale)

    p = sub.add_parser("workload", help="traffic-shape tail-latency gate")
    p.add_argument("json")
    p.add_argument("--max-p99-p50", type=float, default=10.0)
    p.add_argument("--min-active-fraction", type=float, default=0.0)
    p.set_defaults(func=cmd_workload)

    p = sub.add_parser("serving", help="top-K serving exactness + throughput gate")
    p.add_argument("json")
    p.add_argument("--min-users-per-sec", type=float, default=0.0)
    p.add_argument("--min-recall", type=float, default=0.999)
    p.set_defaults(func=cmd_serving)

    p = sub.add_parser("async", help="bounded-staleness overlap + schedule gate")
    p.add_argument("json")
    p.add_argument("--min-overlap-speedup", type=float, default=0.0)
    p.set_defaults(func=cmd_async)

    p = sub.add_parser("storage", help="beyond-RAM storage tier gate")
    p.add_argument("json")
    p.add_argument("--require-backend", choices=("ram", "mmap"), default="")
    p.add_argument("--max-rss-mb", type=float, default=0.0)
    p.add_argument("--min-rounds-per-sec", type=float, default=0.0)
    p.add_argument("--min-hit-rate", type=float, default=0.0)
    p.add_argument("--require-compare-identical", action="store_true")
    p.add_argument("--require-engine", choices=IO_ENGINES, default="")
    p.add_argument("--allow-engine-fallback", action="store_true")
    p.add_argument("--max-shard-imbalance", type=float, default=0.0)
    p.add_argument("--min-engine-speedup", type=float, default=0.0)
    p.set_defaults(func=cmd_storage)

    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
