// Quickstart: train a matrix-factorization federated recommender on a
// synthetic MovieLens-100K-like dataset and report recommendation
// quality (HR@10), with no attacker present.
//
// Usage: quickstart [--scale 0.3] [--rounds 200] [--dim 16] [--model mf|dl]

#include <algorithm>
#include <cstdio>

#include "common/flags.h"
#include "common/string_util.h"
#include "core/simulation.h"

int main(int argc, char** argv) {
  pieck::FlagParser flags;
  if (pieck::Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  pieck::ExperimentConfig config;
  config.dataset =
      pieck::MovieLens100KConfig(flags.GetDouble("scale", 0.3));
  config.model_kind = flags.GetString("model", "mf") == "dl"
                          ? pieck::ModelKind::kNeuralCf
                          : pieck::ModelKind::kMatrixFactorization;
  config.embedding_dim = static_cast<int>(flags.GetInt("dim", 16));
  config.rounds = static_cast<int>(flags.GetInt("rounds", 200));
  config.eval_every = static_cast<int>(flags.GetInt("eval-every", 50));
  config.attack = pieck::AttackKind::kNone;
  config.users_per_round =
      std::min(config.users_per_round, config.dataset.num_users);

  std::printf("== fedrec-pieck quickstart ==\n");
  std::printf("dataset: %s (users=%d items=%d interactions=%lld)\n",
              config.dataset.name.c_str(), config.dataset.num_users,
              config.dataset.num_items,
              static_cast<long long>(config.dataset.num_interactions));
  std::printf("model: %s, dim=%d, rounds=%d\n",
              pieck::ModelKindToString(config.model_kind),
              config.embedding_dim, config.rounds);

  auto result = pieck::RunExperiment(config);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nround   HR@10\n");
  for (const auto& [round, hr] : result->hr_history) {
    std::printf("%5d   %s%%\n", round,
                pieck::FormatPercent(hr).c_str());
  }
  std::printf("\nfinal HR@10 = %s%%  (%.3f s/round)\n",
              pieck::FormatPercent(result->hr_at_k).c_str(),
              result->seconds_per_round);
  return 0;
}
