// Attack demo: injects PIECK malicious clients (5% of users by default)
// into federated training and tracks how the exposure ratio (ER@10) of a
// randomly chosen cold target item climbs while recommendation quality
// (HR@10) stays intact — the paper's core threat result (Table III).
//
// Usage: attack_demo [--attack ipe|uea|ahum|ara|pipa|fedreca]
//                    [--model mf|dl] [--scale 0.3] [--rounds 200]
//                    [--malicious 0.05] [--topn 10]

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/string_util.h"
#include "core/simulation.h"

namespace {

pieck::AttackKind ParseAttack(const std::string& name) {
  if (name == "uea") return pieck::AttackKind::kPieckUea;
  if (name == "ipe") return pieck::AttackKind::kPieckIpe;
  if (name == "ahum") return pieck::AttackKind::kAHum;
  if (name == "ara") return pieck::AttackKind::kARa;
  if (name == "pipa") return pieck::AttackKind::kPipAttack;
  if (name == "fedreca") return pieck::AttackKind::kFedRecAttack;
  return pieck::AttackKind::kNone;
}

}  // namespace

int main(int argc, char** argv) {
  pieck::FlagParser flags;
  if (pieck::Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  pieck::ExperimentConfig config;
  config.dataset = pieck::MovieLens100KConfig(flags.GetDouble("scale", 0.3));
  if (flags.Has("interactions")) {
    config.dataset.num_interactions = flags.GetInt("interactions", 9000);
  }
  config.model_kind = flags.GetString("model", "mf") == "dl"
                          ? pieck::ModelKind::kNeuralCf
                          : pieck::ModelKind::kMatrixFactorization;
  config.rounds = static_cast<int>(flags.GetInt("rounds", 200));
  config.eval_every = static_cast<int>(flags.GetInt("eval-every", 25));
  config.users_per_round =
      std::min(static_cast<int>(flags.GetInt("batch", config.users_per_round)),
               config.dataset.num_users);
  config.attack = ParseAttack(flags.GetString("attack", "uea"));
  config.malicious_fraction = flags.GetDouble("malicious", 0.05);
  config.attack_config.mined_top_n =
      static_cast<int>(flags.GetInt("topn", 10));
  config.attack_config.attack_scale = flags.GetDouble("attack-scale", 1.0);
  config.attack_config.ipe_lambda = flags.GetDouble("lambda", 0.5);
  config.attack_config.num_approx_users =
      static_cast<int>(flags.GetInt("approx-users", 16));
  config.attack_config.uea_opt_rounds =
      static_cast<int>(flags.GetInt("uea-rounds", 3));
  config.attack_config.uea_batch_size =
      static_cast<int>(flags.GetInt("uea-batch", 5));

  std::printf("== PIECK attack demo ==\n");
  std::printf("attack: %s on %s, p~=%.1f%%, N=%d\n",
              pieck::AttackKindToString(config.attack),
              pieck::ModelKindToString(config.model_kind),
              config.malicious_fraction * 100.0,
              config.attack_config.mined_top_n);

  auto result = pieck::RunExperiment(config);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("target item(s):");
  for (int t : result->target_items) std::printf(" %d", t);
  std::printf("\n\nround   ER@10     HR@10\n");
  for (size_t i = 0; i < result->er_history.size(); ++i) {
    std::printf("%5d   %6s%%   %6s%%\n", result->er_history[i].first,
                pieck::FormatPercent(result->er_history[i].second).c_str(),
                pieck::FormatPercent(result->hr_history[i].second).c_str());
  }
  std::printf("\nfinal: ER@10 = %s%%, HR@10 = %s%%\n",
              pieck::FormatPercent(result->er_at_k).c_str(),
              pieck::FormatPercent(result->hr_at_k).c_str());
  return 0;
}
