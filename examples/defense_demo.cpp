// Defense demo: runs a chosen attack against a chosen defense and
// reports ER@10 / HR@10 — the Table IV scenario. The paper's defense
// ("ours") adds two regularization terms to benign client training and
// drives ER of PIECK to ~0 while keeping HR intact; the six classical
// robust-aggregation defenses fail because poisonous gradients dominate
// cold items (§V-A).
//
// Usage: defense_demo [--attack uea|ipe|ahum|...]
//                     [--defense none|normbound|median|trimmedmean|krum|
//                      multikrum|bulyan|ours]
//                     [--model mf|dl] [--rounds 150] [--beta 0.5]
//                     [--gamma 0.5]

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/string_util.h"
#include "core/simulation.h"

namespace {

pieck::AttackKind ParseAttack(const std::string& name) {
  if (name == "uea") return pieck::AttackKind::kPieckUea;
  if (name == "ipe") return pieck::AttackKind::kPieckIpe;
  if (name == "ahum") return pieck::AttackKind::kAHum;
  if (name == "ara") return pieck::AttackKind::kARa;
  if (name == "pipa") return pieck::AttackKind::kPipAttack;
  if (name == "fedreca") return pieck::AttackKind::kFedRecAttack;
  return pieck::AttackKind::kNone;
}

pieck::DefenseKind ParseDefense(const std::string& name) {
  if (name == "normbound") return pieck::DefenseKind::kNormBound;
  if (name == "median") return pieck::DefenseKind::kMedian;
  if (name == "trimmedmean") return pieck::DefenseKind::kTrimmedMean;
  if (name == "krum") return pieck::DefenseKind::kKrum;
  if (name == "multikrum") return pieck::DefenseKind::kMultiKrum;
  if (name == "bulyan") return pieck::DefenseKind::kBulyan;
  if (name == "ours") return pieck::DefenseKind::kOurs;
  if (name == "hybrid") return pieck::DefenseKind::kOursPlusNormBound;
  return pieck::DefenseKind::kNoDefense;
}

}  // namespace

int main(int argc, char** argv) {
  pieck::FlagParser flags;
  if (pieck::Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  pieck::ExperimentConfig config;
  config.dataset = pieck::MovieLens100KConfig(flags.GetDouble("scale", 0.3));
  config.model_kind = flags.GetString("model", "mf") == "dl"
                          ? pieck::ModelKind::kNeuralCf
                          : pieck::ModelKind::kMatrixFactorization;
  config.rounds = static_cast<int>(flags.GetInt("rounds", 150));
  config.eval_every = static_cast<int>(flags.GetInt("eval-every", 50));
  config.users_per_round =
      std::min(static_cast<int>(flags.GetInt("batch", 74)),
               config.dataset.num_users);
  config.attack = ParseAttack(flags.GetString("attack", "uea"));
  config.defense = ParseDefense(flags.GetString("defense", "ours"));
  config.malicious_fraction = flags.GetDouble("malicious", 0.05);
  config.attack_config.mined_top_n =
      static_cast<int>(flags.GetInt("topn", 20));
  config.attack_config.ipe_opt_steps =
      static_cast<int>(flags.GetInt("ipe-steps", 5));
  config.attack_config.uea_opt_rounds =
      static_cast<int>(flags.GetInt("uea-rounds", 3));
  config.defense_options.beta = flags.GetDouble("beta", 2.0);
  config.defense_options.gamma = flags.GetDouble("gamma", 1.0);
  config.defense_options.mined_top_n =
      static_cast<int>(flags.GetInt("defense-topn", 10));
  config.aggregator_params.malicious_fraction = config.malicious_fraction;
  config.aggregator_params.norm_bound = flags.GetDouble("norm-bound", 0.005);

  std::printf("== PIECK defense demo ==\n");
  std::printf("attack: %s | defense: %s | model: %s\n",
              pieck::AttackKindToString(config.attack),
              pieck::DefenseKindToString(config.defense),
              pieck::ModelKindToString(config.model_kind));

  auto result = pieck::RunExperiment(config);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nround   ER@10     HR@10\n");
  for (size_t i = 0; i < result->er_history.size(); ++i) {
    std::printf("%5d   %6s%%   %6s%%\n", result->er_history[i].first,
                pieck::FormatPercent(result->er_history[i].second).c_str(),
                pieck::FormatPercent(result->hr_history[i].second).c_str());
  }
  std::printf("\nfinal: ER@10 = %s%%, HR@10 = %s%%\n",
              pieck::FormatPercent(result->er_at_k).c_str(),
              pieck::FormatPercent(result->hr_at_k).c_str());
  return 0;
}
