// Diagnostic probe: tracks the attacker's target item logit against the
// benign users' top-10 entry threshold round by round. Useful for
// understanding when and why an attack gains or loses exposure.
//
// Usage: target_score_probe [--attack uea|ipe|...] [--rounds 400] ...

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "core/simulation.h"

namespace {

pieck::AttackKind ParseAttack(const std::string& name) {
  if (name == "uea") return pieck::AttackKind::kPieckUea;
  if (name == "ipe") return pieck::AttackKind::kPieckIpe;
  if (name == "ahum") return pieck::AttackKind::kAHum;
  return pieck::AttackKind::kNone;
}

}  // namespace

int main(int argc, char** argv) {
  pieck::FlagParser flags;
  if (pieck::Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  pieck::ExperimentConfig config;
  config.dataset = pieck::MovieLens100KConfig(flags.GetDouble("scale", 0.3));
  config.users_per_round =
      std::min(static_cast<int>(flags.GetInt("batch", 74)),
               config.dataset.num_users);
  const std::string defense = flags.GetString("defense", "none");
  if (defense == "trimmedmean") config.defense = pieck::DefenseKind::kTrimmedMean;
  if (defense == "multikrum") config.defense = pieck::DefenseKind::kMultiKrum;
  if (defense == "bulyan") config.defense = pieck::DefenseKind::kBulyan;
  if (defense == "ours") config.defense = pieck::DefenseKind::kOurs;
  config.attack = ParseAttack(flags.GetString("attack", "uea"));
  config.attack_config.mined_top_n =
      static_cast<int>(flags.GetInt("topn", 10));
  config.attack_config.uea_opt_rounds =
      static_cast<int>(flags.GetInt("uea-rounds", 3));
  config.attack_config.attack_scale = flags.GetDouble("attack-scale", 1.0);
  const int rounds = static_cast<int>(flags.GetInt("rounds", 400));
  const int every = static_cast<int>(flags.GetInt("eval-every", 50));

  auto sim_or = pieck::Simulation::Create(config);
  if (!sim_or.ok()) {
    std::fprintf(stderr, "%s\n", sim_or.status().ToString().c_str());
    return 1;
  }
  auto sim = std::move(sim_or).value();
  const int target = sim->targets()[0];

  // A shadow miner observing every round, mimicking what a malicious
  // client sampled in rounds 1..R̃+1 would mine.
  pieck::PopularItemMiner shadow(
      static_cast<int>(flags.GetInt("mine-rounds", 2)),
      config.attack_config.mined_top_n);
  std::printf("target item %d, attack %s\n", target,
              pieck::AttackKindToString(config.attack));
  std::printf("round  ER@10   t-logit  thresh10  |v_t|  |v_pop|\n");

  std::vector<int> pop_rank = sim->train().PopularityRank();
  for (int r = 0; r < rounds; ++r) {
    sim->RunRound();
    shadow.Observe(sim->global().item_embeddings);
    if (shadow.Ready() && r < 8) {
      std::printf("round %d shadow-mined popularity ranks:", r + 1);
      bool has_target = false;
      for (int item : shadow.MinedItems()) {
        std::printf(" %d", pop_rank[static_cast<size_t>(item)]);
        if (item == target) has_target = true;
      }
      std::printf("%s\n", has_target ? "  [TARGET MINED!]" : "");
    }
    if ((r + 1) % every != 0 && r + 1 != rounds) continue;

    const auto& g = sim->global();
    const auto& model = sim->model();
    pieck::Vec vt =
        g.item_embeddings.Row(static_cast<size_t>(target));

    // Mean target logit and mean 10th-best uninteracted logit.
    double mean_logit = 0.0;
    double mean_thresh = 0.0;
    pieck::BenignEvalView view = sim->benign_eval_view();
    for (size_t ui = 0; ui < view.size(); ++ui) {
      const pieck::Vec u = view.embedding_vec(ui);
      mean_logit += model.Forward(g, u, vt, nullptr);
      std::vector<double> scores;
      scores.reserve(static_cast<size_t>(g.num_items()));
      for (int j = 0; j < g.num_items(); ++j) {
        if (sim->train().Interacted(view.user_id(ui), j)) continue;
        pieck::Vec v = g.item_embeddings.Row(static_cast<size_t>(j));
        scores.push_back(model.Forward(g, u, v, nullptr));
      }
      std::nth_element(scores.begin(), scores.begin() + 9, scores.end(),
                       std::greater<double>());
      mean_thresh += scores[9];
    }
    size_t n = view.size();
    mean_logit /= static_cast<double>(n);
    mean_thresh /= static_cast<double>(n);

    // Mean norm of the 10 most popular items (ground truth).
    double pop_norm = 0.0;
    auto popular = sim->train().TopPopularItems(0.15);
    int take = std::min<int>(10, static_cast<int>(popular.size()));
    for (int i = 0; i < take; ++i) {
      pop_norm += pieck::Norm2(
          g.item_embeddings.Row(static_cast<size_t>(popular[i])));
    }
    pop_norm /= std::max(1, take);

    std::printf("%5d  %5.1f%%  %7.2f  %8.2f  %5.2f  %6.2f\n", r + 1,
                sim->EvaluateEr(10) * 100.0, mean_logit, mean_thresh,
                pieck::Norm2(vt), pop_norm);
  }
  return 0;
}
