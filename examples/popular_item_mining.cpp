// Popular item mining demo (Algorithm 1): trains a federated recommender
// with NO malicious users, runs the Δ-Norm miner the way a participant
// would, and scores the mined set against the dataset's ground-truth
// popularity — precision@N and the popularity ranks of the mined items.
//
// This is the measurement behind PIECK's core claim (Properties 1-2):
// popular items keep changing their embeddings longer and harder than
// unpopular ones, so a participant can identify them from nothing but
// the item-embedding matrices it receives.
//
// Usage: popular_item_mining [--model mf|dl] [--topn 10]
//                            [--mine-rounds 2] [--start-round 2]

#include <algorithm>
#include <cstdio>
#include <string>

#include "attack/popular_item_miner.h"
#include "common/flags.h"
#include "core/simulation.h"

int main(int argc, char** argv) {
  pieck::FlagParser flags;
  if (pieck::Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  pieck::ExperimentConfig config;
  config.dataset = pieck::MovieLens100KConfig(flags.GetDouble("scale", 0.3));
  config.model_kind = flags.GetString("model", "mf") == "dl"
                          ? pieck::ModelKind::kNeuralCf
                          : pieck::ModelKind::kMatrixFactorization;
  config.users_per_round =
      std::min(static_cast<int>(flags.GetInt("batch", 74)),
               config.dataset.num_users);
  config.attack = pieck::AttackKind::kNone;

  const int top_n = static_cast<int>(flags.GetInt("topn", 10));
  const int mine_rounds = static_cast<int>(flags.GetInt("mine-rounds", 2));
  const int start_round = static_cast<int>(flags.GetInt("start-round", 2));

  auto sim_or = pieck::Simulation::Create(config);
  if (!sim_or.ok()) {
    std::fprintf(stderr, "%s\n", sim_or.status().ToString().c_str());
    return 1;
  }
  auto sim = std::move(sim_or).value();

  pieck::PopularItemMiner miner(mine_rounds, top_n);
  for (int r = 0; r < start_round + mine_rounds + 1; ++r) {
    sim->RunRound();
    if (r >= start_round) miner.Observe(sim->global().item_embeddings);
  }
  if (!miner.Ready()) {
    std::fprintf(stderr, "miner not ready — increase rounds\n");
    return 1;
  }

  const pieck::Dataset& train = sim->train();
  std::vector<int> pop_rank = train.PopularityRank();
  const int popular_cutoff = static_cast<int>(0.15 * train.num_items());

  std::printf("== popular item mining on %s (%s) ==\n",
              config.dataset.name.c_str(),
              pieck::ModelKindToString(config.model_kind));
  std::printf("mined after observing %d consecutive rounds starting at "
              "round %d\n\n",
              mine_rounds + 1, start_round + 1);
  std::printf("mined item   popularity rank   in top-15%%?\n");
  int hits = 0;
  for (int item : miner.MinedItems()) {
    int rank = pop_rank[static_cast<size_t>(item)];
    bool popular = rank < popular_cutoff;
    hits += popular ? 1 : 0;
    std::printf("%10d   %15d   %s\n", item, rank, popular ? "yes" : "NO");
  }
  std::printf("\nprecision@%d against ground-truth top-15%% popularity: "
              "%.0f%%\n",
              top_n, 100.0 * hits / top_n);
  return 0;
}
